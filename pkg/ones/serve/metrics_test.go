package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/pkg/ones"
)

// newMetricsServer builds a test daemon with the full telemetry stack.
func newMetricsServer(t *testing.T, dir string) (*Server, *ones.Metrics, *httptest.Server) {
	t.Helper()
	cache, err := ones.NewCache(dir, func(string, ...any) {})
	if err != nil {
		t.Fatal(err)
	}
	m := ones.NewMetrics()
	srv := New(cache, nil, WithMetrics(m))
	ts := httptest.NewServer(srv.Handler())
	return srv, m, ts
}

func getBody(t *testing.T, url string, wantCode int) (string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s = %d, want %d: %s", url, resp.StatusCode, wantCode, body)
	}
	return string(body), resp.Header
}

// TestDaemonMetricsAndTrace drives one run through an instrumented
// daemon and checks the whole observability surface: /metrics exposition
// (engine, cache, evolution, HTTP and run-table series), the per-run
// trace tree, and /readyz flipping to 503 on shutdown.
func TestDaemonMetricsAndTrace(t *testing.T) {
	srv, _, ts := newMetricsServer(t, "")
	defer ts.Close()

	st := createRun(t, ts.URL, quickSpec())
	waitStatus(t, ts.URL, st.ID, StatusDone, 30*time.Second)

	body, hdr := getBody(t, ts.URL+"/metrics", http.StatusOK)
	if ct := hdr.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	for _, want := range []string{
		"engine_cells_completed_total 1",
		"servecache_computes_total 1",
		`onesd_runs{state="done"} 1`,
		`onesd_runs{state="running"} 0`,
		`http_requests_total{endpoint="POST /v1/runs",code="201"} 1`,
		`http_request_seconds_count{endpoint="GET /v1/runs/{id}"}`,
		"http_in_flight 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// quickSpec runs tiresias, so evolution series must NOT exist yet.
	if strings.Contains(body, "evolution_generations_total") {
		t.Error("evolution series present without an ONES run")
	}

	// An ONES run adds the evolution series and a deeper trace.
	st2 := createRun(t, ts.URL, RunSpec{Scheduler: "ones", Jobs: 6, Interarrival: 25, Seed: 4, Quick: true})
	waitStatus(t, ts.URL, st2.ID, StatusDone, 60*time.Second)
	body, _ = getBody(t, ts.URL+"/metrics", http.StatusOK)
	for _, want := range []string{
		"evolution_generations_total ",
		"evolution_memo_hits_total ",
		"ones_decisions_total ",
		"engine_cells_completed_total 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q after ONES run", want)
		}
	}

	// Trace endpoint: the run's span tree with the cell lifecycle.
	raw, _ := getBody(t, ts.URL+"/v1/runs/"+st2.ID+"/trace", http.StatusOK)
	var tr struct {
		ID    string          `json:"id"`
		Trace *ones.TraceNode `json:"trace"`
	}
	if err := json.Unmarshal([]byte(raw), &tr); err != nil {
		t.Fatalf("bad trace JSON: %v", err)
	}
	if tr.Trace == nil || tr.Trace.InProgress {
		t.Fatalf("trace = %+v, want an ended root", tr.Trace)
	}
	if len(tr.Trace.Children) != 1 || !strings.HasPrefix(tr.Trace.Children[0].Name, "cell ") {
		t.Fatalf("trace children = %+v, want one cell span", tr.Trace.Children)
	}
	var haveEvo bool
	for _, c := range tr.Trace.Children[0].Children {
		if c.Name == "simulate" {
			for _, g := range c.Children {
				if g.Name == "evolution-interval" {
					haveEvo = true
				}
			}
		}
	}
	if !haveEvo {
		t.Error("simulate span has no evolution-interval children")
	}

	getBody(t, ts.URL+"/v1/runs/no-such-run/trace", http.StatusNotFound)

	// Readiness: ready while serving, draining after Shutdown.
	getBody(t, ts.URL+"/readyz", http.StatusOK)
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		t.Fatal(err)
	}
	getBody(t, ts.URL+"/readyz", http.StatusServiceUnavailable)
	getBody(t, ts.URL+"/healthz", http.StatusOK) // alive, just leaving
}

// TestDaemonWithoutMetrics pins the opt-out path: a bare server still
// serves every API route, /metrics and traces 404, /readyz works.
func TestDaemonWithoutMetrics(t *testing.T) {
	_, ts := newTestServer(t, "")
	defer ts.Close()
	st := createRun(t, ts.URL, quickSpec())
	waitStatus(t, ts.URL, st.ID, StatusDone, 30*time.Second)
	getBody(t, ts.URL+"/metrics", http.StatusNotFound)
	getBody(t, ts.URL+"/v1/runs/"+st.ID+"/trace", http.StatusNotFound)
	getBody(t, ts.URL+"/readyz", http.StatusOK)
}
