package ones

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// newMetricsTestSession builds a small, fast session; extra options
// append after the base configuration.
func newMetricsTestSession(t *testing.T, extra ...Option) *Session {
	t.Helper()
	opts := append([]Option{
		WithQuickScale(),
		WithTopology(4, 4),
		WithTrace(Trace{Jobs: 8, MeanInterarrival: 25, MaxGPUs: 4}),
		WithSeed(3),
	}, extra...)
	s, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestMetricsDoNotChangeResults pins the determinism contract: enabling
// the full telemetry stack (metrics, tracing, instrumented cache) yields
// byte-identical Result JSON to a bare run.
func TestMetricsDoNotChangeResults(t *testing.T) {
	ctx := context.Background()

	bare := newMetricsTestSession(t)
	want, err := bare.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}

	m := NewMetrics()
	cache, err := NewCache("", nil)
	if err != nil {
		t.Fatal(err)
	}
	instrumented := newMetricsTestSession(t, WithMetrics(m), WithCache(cache))
	tctx, end := m.StartTrace(ctx, "run-a", "run")
	got, err := instrumented.Run(tctx)
	end()
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(wantJSON) != string(gotJSON) {
		t.Error("Result JSON differs with metrics enabled")
	}
}

// TestMetricsRecordRunTelemetry checks the instrumented layers all
// surface series after one run, both in the snapshot and the Prometheus
// rendering, and that the run's trace tree has the expected shape.
func TestMetricsRecordRunTelemetry(t *testing.T) {
	m := NewMetrics()
	cache, err := NewCache("", nil)
	if err != nil {
		t.Fatal(err)
	}
	s := newMetricsTestSession(t, WithMetrics(m), WithCache(cache))
	ctx, end := m.StartTrace(context.Background(), "run-1", "run")
	if _, err := s.Run(ctx); err != nil {
		t.Fatal(err)
	}
	end()

	snap := s.Snapshot()
	if snap.CellsStarted != 1 || snap.CellsCompleted != 1 {
		t.Errorf("cells started/completed = %d/%d, want 1/1", snap.CellsStarted, snap.CellsCompleted)
	}
	if snap.CacheComputes != 1 {
		t.Errorf("cache computes = %d, want 1", snap.CacheComputes)
	}
	if snap.Generations == 0 || snap.Candidates == 0 || snap.Decisions == 0 {
		t.Errorf("evolution telemetry missing: %+v", snap)
	}
	if snap.MemoHits == 0 {
		t.Error("throughput memo recorded no hits")
	}
	if snap.CellSeconds <= 0 {
		t.Error("cell wall-time histogram recorded nothing")
	}

	var b strings.Builder
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"engine_cells_completed_total 1",
		"engine_workers ",
		"evolution_generations_total ",
		"ones_decisions_total ",
		"servecache_computes_total 1",
		"servecache_entries 1",
		"engine_cell_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in exposition:\n%s", want, out)
		}
	}

	tree, ok := m.TraceTree("run-1")
	if !ok {
		t.Fatal("trace run-1 missing")
	}
	if tree.Name != "run" || tree.InProgress {
		t.Fatalf("root = %q (in_progress=%v), want ended \"run\"", tree.Name, tree.InProgress)
	}
	if len(tree.Children) != 1 || !strings.HasPrefix(tree.Children[0].Name, "cell ") {
		t.Fatalf("root children = %+v, want one cell span", tree.Children)
	}
	names := map[string]bool{}
	for _, c := range tree.Children[0].Children {
		names[c.Name] = true
	}
	for _, want := range []string{"queued", "trace-gen", "simulate"} {
		if !names[want] {
			t.Errorf("cell span missing %q child (have %v)", want, names)
		}
	}
	// The JSON rendering is what onesd serves; it must round-trip.
	if _, err := json.Marshal(tree); err != nil {
		t.Fatal(err)
	}

	// A second identical run is a memory hit: no new cells simulate.
	ctx2, end2 := m.StartTrace(context.Background(), "run-2", "run")
	if _, err := s.Run(ctx2); err != nil {
		t.Fatal(err)
	}
	end2()
	if snap2 := s.Snapshot(); snap2.CellsStarted != 1 {
		t.Errorf("second run started %d cells, want 1 (memoized)", snap2.CellsStarted)
	}
}

// TestNilMetricsSafe pins the zero-cost disabled path: a nil *Metrics is
// valid everywhere.
func TestNilMetricsSafe(t *testing.T) {
	var m *Metrics
	if err := m.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	ctx, end := m.StartTrace(context.Background(), "x", "run")
	end()
	if ctx == nil {
		t.Fatal("nil Metrics must pass the context through")
	}
	if _, ok := m.TraceTree("x"); ok {
		t.Error("nil Metrics cannot hold traces")
	}
	if snap := m.Snapshot(); snap != (MetricsSnapshot{}) {
		t.Errorf("nil snapshot = %+v, want zero", snap)
	}
	s := newMetricsTestSession(t, WithMetrics(nil))
	if got := s.Snapshot(); got != (MetricsSnapshot{}) {
		t.Errorf("session without metrics: snapshot = %+v, want zero", got)
	}
}
