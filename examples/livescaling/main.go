// livescaling demonstrates the elastic batch-size scaling mechanism
// (§3.3, Figures 11–12) through the public ones SDK's live mini-cluster:
// a data-parallel job training over a real ring all-reduce is grown from
// 2 to 4 workers without checkpointing, then the same rescale is
// repeated through the conventional save/stop/restart path, and the
// interruption times are compared (the Figure 16 contrast).
package main

import (
	"fmt"
	"log"
	"time"

	"repro/pkg/ones"
)

func main() {
	spec := ones.LiveSpec{
		Name:        "resnet50-demo",
		ParamCount:  1 << 19, // 2 MB of parameters, scaled for a laptop demo
		GlobalBatch: 256,
		LR:          0.05,
		Momentum:    0.9,
		DatasetSize: 1 << 19,
	}

	fmt.Println("starting job on 2 workers…")
	job, err := ones.StartLiveJob(spec, 2)
	if err != nil {
		log.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	job.Pause()
	fmt.Printf("  %d steps done, loss %.4f\n", job.Steps(), job.Loss())
	if err := job.Resume(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("elastic rescale 2→4 workers, batch 256→512 (checkpoint-free)…")
	elastic, err := job.RescaleElastic(4, 512)
	if err != nil {
		log.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	job.Pause()
	fmt.Printf("  interruption %v; now %d workers, %d steps, loss %.4f\n",
		elastic, job.Workers(), job.Steps(), job.Loss())
	digests := job.ParamsDigest()
	fmt.Printf("  replica digests (must match): %.3f %.3f %.3f %.3f\n",
		digests[0], digests[1], digests[2], digests[3])
	if err := job.Resume(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("checkpoint-based rescale 4→2 workers (save, stop, restart, reload)…")
	checkpoint, err := job.RescaleCheckpoint(2, 256)
	if err != nil {
		log.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	fmt.Printf("  interruption %v\n", checkpoint)
	job.Stop()

	fmt.Printf("\nelastic was %.1fx cheaper than checkpoint-based migration\n",
		float64(checkpoint)/float64(elastic))
}
