// nlpmixed studies scheduling scalability on a mixed CV+NLP trace: the
// same job stream replayed on clusters of 16 and 64 GPUs (the Figure 17/18
// sweep, condensed). It shows how ONES's advantage over the baselines
// widens with more free capacity to orchestrate.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	opt := core.QuickOptions()
	opt.Seed = 5
	opt.Jobs = 40
	opt.Population = 12
	opt.Capacities = []int{16, 64}
	suite := core.NewSuite(opt)

	fmt.Println("sweeping cluster capacity over the same 40-job CV+NLP trace…")
	out17, err := suite.Fig17()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(out17)

	out18, err := suite.Fig18()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(out18)
	fmt.Println("\n(values > 1.00 are the factor by which the baseline's mean JCT exceeds ONES's)")
}
