// nlpmixed studies scheduling scalability on a mixed CV+NLP trace: the
// same job stream replayed on clusters of 16 and 64 GPUs (the Figure
// 17/18 sweep, condensed), executed through the parallel experiment
// engine so the eight scheduler×capacity cells fan out across every
// core. It shows how ONES's advantage over the baselines widens with
// more free capacity to orchestrate.
package main

import (
	"fmt"
	"log"

	"repro/internal/engine"
	_ "repro/internal/experiments" // populate the experiment registry
)

func main() {
	p := engine.QuickParams()
	p.Seed = 5
	p.Jobs = 40
	p.Population = 12
	p.Capacities = []int{16, 64}
	r := engine.NewRunner(p)

	fmt.Printf("sweeping cluster capacity over the same 40-job CV+NLP trace (%d workers)…\n", r.Workers())
	// Warm every scheduler×capacity cell across the pool up front (as
	// cmd/experiments does); both figures below then render from cache.
	if _, err := r.Results(engine.SweepCells(engine.PaperSchedulers(), p.Capacities)); err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"fig17", "fig18"} {
		e, ok := engine.LookupExperiment(name)
		if !ok {
			log.Fatalf("experiment %s not registered", name)
		}
		out, err := e.Run(r)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		fmt.Print(out)
	}
	fmt.Println("\n(values > 1.00 are the factor by which the baseline's mean JCT exceeds ONES's)")
}
