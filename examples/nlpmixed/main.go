// nlpmixed studies scheduling scalability on a mixed CV+NLP trace: the
// same job stream replayed on clusters of 16 and 64 GPUs (the Figure
// 17/18 sweep, condensed), driven through the public ones SDK. The
// session's worker pool fans the eight scheduler×capacity cells across
// every core, and the Observer streams per-cell progress while they run.
// It shows how ONES's advantage over the baselines widens with more free
// capacity to orchestrate.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/pkg/ones"
)

func main() {
	s, err := ones.New(
		ones.WithQuickScale(),
		ones.WithSeed(5),
		ones.WithTrace(ones.Trace{Jobs: 40}),
		ones.WithPopulation(12),
		ones.WithCapacities(16, 64),
		ones.WithObserver(ones.ObserverFunc(func(p ones.Progress) {
			if p.Kind == ones.KindCellDone {
				fmt.Printf("  cell %-24s %6.2fs  (%d done)\n", p.Cell, p.Elapsed.Seconds(), p.Done)
			}
		})),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sweeping cluster capacity over the same 40-job CV+NLP trace (%d workers)…\n", s.Workers())
	// One call prewarms every scheduler×capacity cell the two figures
	// declare — shared cells simulate once — then renders both from the
	// warm cache.
	results, err := s.RunExperiments(context.Background(), "fig17", "fig18")
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Println()
		fmt.Print(r.Output)
	}
	fmt.Println("\n(values > 1.00 are the factor by which the baseline's mean JCT exceeds ONES's)")
}
