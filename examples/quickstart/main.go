// Quickstart: submit a small stream of deep-learning jobs to a simulated
// 16-GPU cluster scheduled by ONES and print what happened to each job.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	cfg := core.RunConfig{
		Scheduler: core.KindONES,
		Topo:      cluster.Topology{Servers: 4, GPUsPerServer: 4},
		Trace: workload.Config{
			Seed:             7,
			NumJobs:          12,
			MeanInterarrival: 30,
			MaxReqGPUs:       4,
		},
		Seed:       7,
		Population: 8,
	}
	res, err := core.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("ONES on a 16-GPU cluster, 12 jobs:")
	fmt.Printf("%4s %-26s %9s %9s %9s\n", "job", "task", "jct(s)", "exec(s)", "queue(s)")
	for _, j := range res.Jobs {
		fmt.Printf("%4d %-26s %9.1f %9.1f %9.1f\n", j.ID, j.Name, j.JCT, j.Exec, j.Queue)
	}
	fmt.Printf("\naverage JCT %.1f s, average queue %.1f s, %d reconfigurations\n",
		res.MeanJCT(), res.MeanQueue(), res.Reconfigs)
}
