// Quickstart for the public ones SDK: submit a small stream of
// deep-learning jobs to a simulated 16-GPU cluster scheduled by ONES and
// print what happened to each job.
//
// A Session is built once from functional options; Run takes a
// context.Context (cancel it to stop a long run cleanly) and returns the
// stable public Result view with per-job and summary metrics.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/pkg/ones"
)

func main() {
	// Configure the world: the scheduler under test, a 4-server × 4-GPU
	// cluster, and a 12-job trace arriving every ~30 s. The seed makes
	// the whole run deterministic — rerun it and every number matches.
	s, err := ones.New(
		ones.WithScheduler("ones"),
		ones.WithTopology(4, 4),
		ones.WithTrace(ones.Trace{Jobs: 12, MeanInterarrival: 30, MaxGPUs: 4}),
		ones.WithSeed(7),
		ones.WithPopulation(8),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("ONES on a 16-GPU cluster, 12 jobs:")
	fmt.Printf("%4s %-26s %9s %9s %9s\n", "job", "task", "jct(s)", "exec(s)", "queue(s)")
	for _, j := range res.Jobs {
		fmt.Printf("%4d %-26s %9.1f %9.1f %9.1f\n", j.ID, j.Name, j.JCT, j.Exec, j.Queue)
	}
	fmt.Printf("\naverage JCT %.1f s, average queue %.1f s, %d reconfigurations\n",
		res.MeanJCT, res.MeanQueue, res.Reconfigs)
}
