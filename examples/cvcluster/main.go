// cvcluster replays a 64-GPU production-style trace (the paper's Table 2
// mix, dominated by CV training jobs) under ONES and all three baseline
// schedulers through the public ones SDK, and prints the Figure 15-style
// report: average JCT / execution / queuing time, JCT distributions, and
// the fraction of jobs done within 200 seconds.
//
// Session.Compare pairs the comparison: every scheduler replays the
// identical job stream, so differences are the policies', not the
// trace's.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro/pkg/ones"
)

func main() {
	s, err := ones.New(
		ones.WithTrace(ones.Trace{Jobs: 60, MeanInterarrival: 12, MaxGPUs: 8}),
		ones.WithSeed(11),
		ones.WithPopulation(16),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("running ONES, DRL, Tiresias and Optimus on the same 60-job trace…")
	results, err := s.Compare(context.Background(), ones.PaperSchedulers()...)
	if err != nil {
		log.Fatal(err)
	}
	// Best average JCT first, as the paper's tables order them.
	sort.SliceStable(results, func(i, j int) bool { return results[i].MeanJCT < results[j].MeanJCT })

	fmt.Printf("\n%-10s %8s %10s %10s %10s %10s\n",
		"scheduler", "jobs", "mean JCT", "mean exec", "mean queue", "reconfigs")
	for _, r := range results {
		fmt.Printf("%-10s %8d %10.1f %10.1f %10.1f %10d\n",
			r.Scheduler, len(r.Jobs), r.MeanJCT, r.MeanExec, r.MeanQueue, r.Reconfigs)
	}

	fmt.Printf("\nJCT distribution (s):\n%-10s %8s %8s %8s %8s %8s\n",
		"scheduler", "min", "q1", "median", "q3", "max")
	for _, r := range results {
		fmt.Printf("%-10s %8.1f %8.1f %8.1f %8.1f %8.1f\n",
			r.Scheduler, r.JCT.Min, r.JCT.Q1, r.JCT.Median, r.JCT.Q3, r.JCT.Max)
	}

	fmt.Println()
	for _, r := range results {
		fmt.Printf("jobs completed within 200 s (%s): %.0f%%\n",
			r.Scheduler, 100*r.FractionDoneWithin(200))
	}
}
