// cvcluster replays a 64-GPU production-style trace (the paper's Table 2
// mix, dominated by CV training jobs) under ONES and all three baseline
// schedulers, and prints the Figure 15-style report: average JCT /
// execution / queuing time, distributions, and the fraction of jobs done
// within 200 seconds.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func main() {
	cfg := core.RunConfig{
		Scheduler: core.KindONES,
		Trace: workload.Config{
			Seed:             11,
			NumJobs:          60,
			MeanInterarrival: 12,
			MaxReqGPUs:       8,
		},
		Seed:       11,
		Population: 16,
	}
	fmt.Println("running ONES, DRL, Tiresias and Optimus on the same 60-job trace…")
	results, err := core.Compare(cfg, core.PaperBaselines())
	if err != nil {
		log.Fatal(err)
	}

	sums := make([]metrics.Summary, len(results))
	for i, r := range results {
		sums[i] = metrics.Summarize(r)
	}
	metrics.SortSummaries(sums)
	fmt.Println()
	fmt.Print(metrics.ComparisonTable(sums))
	fmt.Println()
	fmt.Print(metrics.BoxTable(results, metrics.JCT))
	fmt.Println()
	for _, r := range results {
		fmt.Printf("jobs completed within 200 s (%s): %.0f%%\n",
			r.Scheduler, 100*metrics.FractionWithin(r, metrics.JCT, 200))
	}
}
